// Package server exposes the debugger and the search operation over HTTP as
// JSON, so the system can back a search box the way the paper's introduction
// frames it (e-commerce sites suppressing "no results found") while the
// debugging endpoint serves the developers behind it.
//
// Endpoints:
//
//	GET  /debug?q=saffron+scented+candle[&strategy=SBH][&sql=1][&trace=1][&workers=4][&cache=0][&deadline_ms=500][&budget=200][&probe_path=prepared|text|bitset][&ledger=1]
//	GET  /debug/runs
//	GET  /debug/flight[?req=000042]
//	GET  /search?q=red+candle[&k=10]
//	POST /write          {"sql": "INSERT INTO ..."}
//	GET  /metrics
//	GET  /healthz
//
// All responses are JSON except /metrics (Prometheus text exposition);
// errors use {"error": "..."} with a 4xx/5xx status. With trace=1 the /debug
// response embeds the request's span tree — per-phase wall clock plus the
// Phase 3 probe accounting — under "trace". Every request is logged
// structurally through log/slog with a request ID, status, and duration.
//
// Observability: every /debug run feeds the process-wide flight recorder
// (internal/obs/flight) — a fixed-size ring of probe-lifecycle events.
// /debug/runs lists recent run summaries from the ring, /debug/flight dumps
// the raw ring (optionally filtered to one request ID), and 5xx error bodies
// attach the failing request's events so the evidence survives the response.
// With ledger=1 (requires Server.LedgerDir) the run's complete event stream
// plus its summary are written as a JSONL ledger for offline analysis with
// cmd/kwstrace; the response carries the file in an X-Kwsdbg-Ledger header.
//
// Writes: POST /write executes one INSERT against the live engine. The
// engine attributes the write to its per-table/per-term version vector, so
// only cached artifacts whose footprints intersect the touched table go
// suspect; everything else keeps serving. The response reports the rows
// inserted, the new data version, and the probe cache's suspect/repair
// counters so a churn workload can watch invalidation stay proportional.
//
// Resource governance: /debug and /search pass through an admission
// semaphore (Server.MaxInflight) and are shed with 429 + Retry-After when
// the server is saturated. deadline_ms and budget bound one request's
// probing; when either runs out the response is still HTTP 200, with
// "incomplete": true and the partial classification (see internal/report).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kwsdbg/internal/clock"
	"kwsdbg/internal/core"
	"kwsdbg/internal/engine"
	"kwsdbg/internal/obs"
	"kwsdbg/internal/obs/flight"
	"kwsdbg/internal/report"
)

// HTTP-layer metrics. The path label is restricted to the fixed endpoint set
// (unknown paths collapse to "other") so cardinality stays bounded.
var (
	mHTTPRequests = obs.Default.CounterVec("kwsdbg_http_requests_total",
		"HTTP requests served, by endpoint and status code.", "path", "status")
	mHTTPSeconds = obs.Default.HistogramVec("kwsdbg_http_request_seconds",
		"HTTP request latency by endpoint.", nil, "path")
	mHTTPInFlight = obs.Default.Gauge("kwsdbg_http_in_flight",
		"Requests currently being served.")
	mWrites = obs.Default.Counter("kwsdbg_writes_total",
		"INSERT statements applied through POST /write.")
	mWriteRows = obs.Default.Counter("kwsdbg_write_rows_total",
		"Rows inserted through POST /write.")
	mWriteErrors = obs.Default.Counter("kwsdbg_write_errors_total",
		"POST /write requests rejected (parse error, unknown table, bad value).")
)

// nextRequestID numbers requests process-wide for log correlation.
var nextRequestID atomic.Int64

// Server wires a debugger into an http.Handler.
type Server struct {
	sys *core.System
	mux *http.ServeMux
	// Timeout bounds each request's probing work; zero means no bound.
	Timeout time.Duration
	// Workers is the default probe concurrency for /debug requests; <= 1
	// probes serially. Requests override it with ?workers=N.
	Workers int
	// Logger receives one structured line per request plus response-encoding
	// failures; nil means slog.Default().
	Logger *slog.Logger
	// MaxInflight caps how many /debug and /search requests may run probing
	// work concurrently; <= 0 disables admission control. Requests beyond the
	// cap wait up to AdmissionWait for a slot and are then shed with 429.
	MaxInflight int
	// AdmissionWait bounds how long an over-limit request queues for an
	// admission slot; <= 0 means DefaultAdmissionWait.
	AdmissionWait time.Duration
	// ProbeBudget is the server-wide cap on probes per /debug request; <= 0
	// means unlimited. Requests can tighten it with ?budget=N but never
	// exceed it.
	ProbeBudget int
	// Recorder is the flight-event ring every /debug run records into. New
	// installs a default-size ring; replace it before serving to resize.
	Recorder *flight.Recorder
	// LedgerDir enables ?ledger=1: completed runs write their JSONL event
	// ledger under this directory. Empty leaves ledgers off (requests asking
	// for one get a 400).
	LedgerDir string

	semOnce sync.Once
	sem     chan struct{}
}

// New builds the handler around a ready system.
func New(sys *core.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux(), Timeout: 30 * time.Second,
		Recorder: flight.NewRecorder(0)}
	s.mux.HandleFunc("/debug", s.handleDebug)
	s.mux.HandleFunc("/debug/runs", s.handleRuns)
	s.mux.HandleFunc("/debug/flight", s.handleFlight)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/write", s.handleWrite)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.Handle("/metrics", obs.Default.Handler())
	return s
}

func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.Default()
}

// statusWriter captures the status code and body size for logging.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// metricPath collapses unknown paths so the path label stays low-cardinality.
func metricPath(p string) string {
	switch p {
	case "/debug", "/debug/runs", "/debug/flight", "/search", "/write", "/healthz", "/metrics":
		return p
	default:
		return "other"
	}
}

// ServeHTTP implements http.Handler: logging and metrics middleware around
// the endpoint mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := fmt.Sprintf("%06d", nextRequestID.Add(1))
	start := time.Now()
	mHTTPInFlight.Add(1)
	defer mHTTPInFlight.Add(-1)

	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	sw.Header().Set("X-Request-ID", id)
	// The ID rides the context so deeper layers (engine retry logging, the
	// flight recorder) can attribute their events to this request.
	r = r.WithContext(obs.WithRequestID(r.Context(), id))
	s.mux.ServeHTTP(sw, r)

	elapsed := time.Since(start)
	path := metricPath(r.URL.Path)
	mHTTPRequests.With(path, strconv.Itoa(sw.status)).Inc()
	mHTTPSeconds.With(path).Observe(elapsed.Seconds())
	q := r.URL.Query()
	s.logger().LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("request_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("query", q.Get("q")),
		slog.String("strategy", q.Get("strategy")),
		slog.Int("status", sw.status),
		slog.Float64("duration_ms", float64(elapsed.Microseconds())/1000),
		slog.Int("bytes", sw.bytes),
	)
}

func (s *Server) context(r *http.Request) (context.Context, context.CancelFunc) {
	if s.Timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.Timeout)
}

// writeJSON marshals v first so a failure becomes a clean 500 instead of a
// truncated 200, sets Content-Type before any write, and logs (rather than
// drops) errors writing the response.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := jsonBody(v)
	if err != nil {
		s.logger().Error("encode response", slog.String("error", err.Error()))
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.logger().Warn("write response", slog.String("error", err.Error()))
	}
}

func jsonBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	body := map[string]any{"error": err.Error()}
	// Server-side failures attach the request's flight events: by the time
	// an operator reads the 5xx the ring may have wrapped, so the evidence
	// travels with the response.
	if status >= 500 && s.Recorder != nil {
		if evs := s.Recorder.Snapshot(obs.RequestID(r.Context())); len(evs) > 0 {
			body["flight"] = flightJSON(evs)
		}
	}
	s.writeJSON(w, status, body)
}

// flightEventJSON is the wire form of one flight event in /debug/flight and
// 5xx bodies; it matches the ledger's event schema minus the envelope.
type flightEventJSON struct {
	Seq   uint64 `json:"seq"`
	Req   string `json:"req,omitempty"`
	Kind  string `json:"kind"`
	Node  int32  `json:"node"`
	Probe string `json:"probe,omitempty"`
	Alive bool   `json:"alive,omitempty"`
	DurNS int64  `json:"dur_ns,omitempty"`
	Cause string `json:"cause,omitempty"`
}

func flightJSON(evs []flight.Event) []flightEventJSON {
	out := make([]flightEventJSON, len(evs))
	for i, ev := range evs {
		out[i] = flightEventJSON{
			Seq: ev.Seq, Req: ev.Req, Kind: ev.Kind.String(), Node: ev.Node,
			Probe: ev.Probe, Alive: ev.Alive, DurNS: int64(ev.Dur), Cause: ev.Cause,
		}
	}
	return out
}

// keywords parses the q parameter into keyword fields.
func keywords(r *http.Request) ([]string, error) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		return nil, fmt.Errorf("missing q parameter")
	}
	return strings.Fields(q), nil
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	kws, err := keywords(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	strat := core.SBH
	if name := r.URL.Query().Get("strategy"); name != "" {
		strat, err = parseStrategy(name)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
	}
	workers := s.Workers
	if raw := r.URL.Query().Get("workers"); raw != "" {
		workers, err = strconv.Atoi(raw)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad workers parameter %q (want an integer)", raw))
			return
		}
		// Out-of-range values are clamped into [1, core.MaxWorkers] rather
		// than rejected: the cap is a server-side resource bound, not part of
		// the request contract.
		workers = core.ClampWorkers(workers)
	}
	// deadline_ms bounds this request's probing wall clock; the server
	// timeout remains the ceiling.
	var deadline time.Duration
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms <= 0 {
			s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad deadline_ms parameter %q (want a positive integer)", raw))
			return
		}
		deadline = time.Duration(ms) * time.Millisecond
		if s.Timeout > 0 && deadline > s.Timeout {
			deadline = s.Timeout
		}
	}
	// budget tightens the server-wide probe allowance; it can never raise it.
	budget := s.ProbeBudget
	if raw := r.URL.Query().Get("budget"); raw != "" {
		b, err := strconv.Atoi(raw)
		if err != nil || b <= 0 {
			s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad budget parameter %q (want a positive integer)", raw))
			return
		}
		if budget <= 0 || b < budget {
			budget = b
		}
	}
	// probe_path selects the Phase 3 execution path: compiled engine
	// handles (the default), the rendered-SQL text path, or the bitset
	// bitmap-semi-join path. The outputs are identical; the knob exists for
	// benchmarking and debugging.
	textProbes, bitsetProbes := false, false
	switch raw := r.URL.Query().Get("probe_path"); raw {
	case "", "prepared":
	case "text":
		textProbes = true
	case "bitset":
		bitsetProbes = true
	default:
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad probe_path parameter %q (want prepared, text, or bitset)", raw))
		return
	}
	// ledger=1 additionally captures the run's full event stream and writes
	// it as a JSONL ledger; it needs a configured directory.
	wantLedger := r.URL.Query().Get("ledger") == "1"
	if wantLedger && s.LedgerDir == "" {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("ledger=1 requires the server to be started with a ledger directory"))
		return
	}
	release, ok := s.admit(r.Context())
	if !ok {
		s.shed(w, r)
		return
	}
	defer release()
	ctx, cancel := s.context(r)
	defer cancel()
	// One flight log per run: it stamps events with the request ID and, for
	// ledger runs, keeps the private copy the JSONL file is written from.
	fl := flight.NewLog(s.Recorder, obs.RequestID(ctx), wantLedger)
	ctx = flight.NewContext(ctx, fl)
	var root *obs.Span
	if r.URL.Query().Get("trace") == "1" {
		ctx, root = obs.StartTrace(ctx, "debug")
	}
	out, err := s.sys.DebugContext(ctx, kws, core.Options{
		Strategy:     strat,
		Workers:      workers,
		BypassCache:  r.URL.Query().Get("cache") == "0",
		TextProbes:   textProbes,
		BitsetProbes: bitsetProbes,
		Deadline:     deadline,
		ProbeBudget:  budget,
	})
	root.End()
	if err != nil {
		s.writeError(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	if out.Incomplete {
		mBudgetExhausted.With(out.IncompleteReason).Inc()
	}
	sum := s.runSummary(fl, kws, workers, budget, out)
	if s.Recorder != nil {
		s.Recorder.AddRun(sum)
	}
	if wantLedger {
		if path, lerr := flight.WriteLedgerFile(s.LedgerDir, sum.Req, fl.Events(), &sum); lerr != nil {
			s.logger().Warn("ledger write failed",
				slog.String("request_id", sum.Req), slog.String("error", lerr.Error()))
		} else {
			w.Header().Set("X-Kwsdbg-Ledger", path)
		}
	}
	opts := report.JSONOptions{ShowSQL: r.URL.Query().Get("sql") == "1", Trace: root}
	var buf bytes.Buffer
	if err := report.JSONOpts(&buf, out, opts); err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := io.Copy(w, &buf); err != nil {
		s.logger().Warn("write response", slog.String("error", err.Error()))
	}
}

// runSummary digests a finished debug run for the recent-runs ring and the
// ledger's closing record.
func (s *Server) runSummary(fl *flight.Log, kws []string, workers, budget int, out *core.Output) flight.RunSummary {
	st := out.Stats
	return flight.RunSummary{
		Req:         fl.Req(),
		UnixNS:      clock.Now().UnixNano(),
		Keywords:    kws,
		Strategy:    st.Strategy.String(),
		Workers:     core.ClampWorkers(workers),
		DataVersion: s.sys.Engine().DataVersion(),

		MapMS:      ms(st.MapTime),
		PruneMS:    ms(st.PruneTime),
		MTNMS:      ms(st.MTNTime),
		TraverseMS: ms(st.TraverseTime),

		Probes:    st.SQLExecuted,
		CacheHits: st.CacheHits,
		SQLIssued: st.SQLIssued(),
		SQLMS:     ms(st.SQLTime),

		PlanCompiles:  st.PlanCompiles,
		CandSetHits:   st.CandSetHits,
		CandSetMisses: st.CandSetMisses,

		BudgetLimit:      budget,
		Incomplete:       out.Incomplete,
		IncompleteReason: out.IncompleteReason,

		Answers:    len(out.Answers),
		NonAnswers: len(out.NonAnswers),
		Events:     fl.Count(),
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// handleRuns lists the recorder's retained run summaries, most recent first.
// It answers from the in-memory ring, so it works with no ledger configured.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	runs := []flight.RunSummary{}
	if s.Recorder != nil {
		runs = append(runs, s.Recorder.Runs()...)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"runs": runs})
}

// handleFlight dumps the flight ring in sequence order, optionally filtered
// to one request ID with ?req=.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	var evs []flight.Event
	if s.Recorder != nil {
		evs = s.Recorder.Snapshot(r.URL.Query().Get("req"))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"events": flightJSON(evs)})
}

// searchResponse is the /search JSON schema. When the query has no exact
// matches, partials carries the maximal sub-queries' results (the paper's
// Figure 1 behaviour) with the keywords each one covers.
type searchResponse struct {
	Keywords []string        `json:"keywords"`
	Missing  []string        `json:"missing,omitempty"`
	Results  []searchResult  `json:"results"`
	Partials []partialResult `json:"partials,omitempty"`
}

type searchResult struct {
	Score float64           `json:"score"`
	Tree  string            `json:"tree"`
	Tuple map[string]string `json:"tuple"`
}

type partialResult struct {
	Covered []string `json:"covered"`
	searchResult
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	kws, err := keywords(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	release, ok := s.admit(r.Context())
	if !ok {
		s.shed(w, r)
		return
	}
	defer release()
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k <= 0 || k > 1000 {
			s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad k parameter %q", raw))
			return
		}
	}
	results, partials, missing, err := s.sys.SearchPartial(kws, k)
	if err != nil {
		s.writeError(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	conv := func(res core.SearchResult) searchResult {
		tuple := make(map[string]string, len(res.Tuple))
		for i, v := range res.Tuple {
			tuple[res.Columns[i]] = v.String()
		}
		return searchResult{Score: res.Score, Tree: res.Query.Tree, Tuple: tuple}
	}
	resp := searchResponse{Keywords: kws, Missing: missing, Results: []searchResult{}}
	for _, res := range results {
		resp.Results = append(resp.Results, conv(res))
	}
	for _, p := range partials {
		resp.Partials = append(resp.Partials, partialResult{Covered: p.Covered, searchResult: conv(p.SearchResult)})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeRequest is the POST /write body.
type writeRequest struct {
	SQL string `json:"sql"`
}

// handleWrite applies one INSERT to the live engine. The engine's version
// vector attributes the write to its table and tokens before the rows become
// visible, so a debug run racing this request either sees the rows or sees
// the intersecting cache entries go suspect — never a stale hit.
func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("write requires POST"))
		return
	}
	var req writeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		mWriteErrors.Inc()
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad write body: %w", err))
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		mWriteErrors.Inc()
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("missing sql field"))
		return
	}
	rows, err := s.sys.Engine().Exec(req.SQL)
	if err != nil {
		mWriteErrors.Inc()
		s.writeError(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	mWrites.Inc()
	mWriteRows.Add(float64(rows))
	body := map[string]any{
		"rows_inserted": rows,
		"data_version":  s.sys.Engine().DataVersion(),
	}
	if c := s.sys.ProbeCache(); c != nil {
		st := c.Snapshot()
		body["probe_cache"] = map[string]any{
			"entries":  st.Entries,
			"suspects": st.Suspects,
			"repairs":  st.Repairs,
		}
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":        "ok",
		"lattice_nodes": s.sys.Lattice().Len(),
		"levels":        s.sys.Lattice().Levels(),
		"tuples":        s.sys.Engine().Database().TotalRows(),
	}
	if c := s.sys.ProbeCache(); c != nil {
		st := c.Snapshot()
		body["probe_cache"] = map[string]any{
			"entries":            st.Entries,
			"hits":               st.Hits,
			"misses":             st.Misses,
			"evictions":          st.Evictions,
			"evictions_capacity": st.EvictionsCapacity,
			"evictions_stale":    st.EvictionsStale,
			"generation":         st.Generation,
			"suspects":           st.Suspects,
			"repairs":            st.Repairs,
		}
	}
	// Both plan caches: the debugger's probe-handle cache and the engine's
	// text-path cache, keyed in the JSON by their metric path label.
	plans := map[string]any{}
	for _, c := range []*engine.PreparedCache{s.sys.PreparedCache(), s.sys.Engine().PlanCache()} {
		st := c.Stats()
		plans[st.Path] = map[string]any{
			"entries":   st.Entries,
			"hits":      st.Hits,
			"misses":    st.Misses,
			"evictions": st.Evictions,
		}
	}
	body["plan_cache"] = plans
	s.writeJSON(w, http.StatusOK, body)
}

func parseStrategy(name string) (core.Strategy, error) {
	switch strings.ToUpper(name) {
	case "BU":
		return core.BU, nil
	case "TD":
		return core.TD, nil
	case "BUWR":
		return core.BUWR, nil
	case "TDWR":
		return core.TDWR, nil
	case "SBH":
		return core.SBH, nil
	case "RE":
		return core.RE, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}
