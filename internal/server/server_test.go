package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	eng, err := figure2.Engine()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		t.Fatal(err)
	}
	return New(sys)
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, rec.Body.String())
	}
	return rec, body
}

func TestHealth(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if body["status"] != "ok" || body["lattice_nodes"].(float64) <= 0 {
		t.Errorf("body = %v", body)
	}
}

func TestDebugEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/debug?q=saffron+scented+candle&strategy=TDWR&sql=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	nonAnswers := body["non_answers"].([]any)
	if len(nonAnswers) != 4 {
		t.Fatalf("non_answers = %d", len(nonAnswers))
	}
	first := nonAnswers[0].(map[string]any)["query"].(map[string]any)
	if first["sql"] == nil || !strings.HasPrefix(first["sql"].(string), "SELECT") {
		t.Errorf("sql=1 did not include SQL: %v", first)
	}
	stats := body["stats"].(map[string]any)
	if stats["strategy"] != "TDWR" {
		t.Errorf("strategy = %v", stats["strategy"])
	}
}

func TestSearchEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/search?q=scented+candle&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	top := results[0].(map[string]any)
	if top["score"].(float64) <= 0 || top["tree"] == "" {
		t.Errorf("top result = %v", top)
	}
	if _, ok := top["tuple"].(map[string]any); !ok {
		t.Errorf("tuple missing: %v", top)
	}
	// Missing keyword reports rather than errors.
	rec, body = get(t, s, "/search?q=zzz+candle")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if missing := body["missing"].([]any); len(missing) != 1 || missing[0] != "zzz" {
		t.Errorf("missing = %v", body["missing"])
	}
}

func TestBadRequests(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/debug", http.StatusBadRequest},
		{"/debug?q=", http.StatusBadRequest},
		{"/debug?q=a+b+c+d", http.StatusUnprocessableEntity}, // too many keywords
		{"/debug?q=x&strategy=NOPE", http.StatusBadRequest},
		{"/search", http.StatusBadRequest},
		{"/search?q=x&k=0", http.StatusBadRequest},
		{"/search?q=x&k=9999", http.StatusBadRequest},
		{"/search?q=x&k=abc", http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec, body := get(t, s, tc.path)
		if rec.Code != tc.want {
			t.Errorf("GET %s: status %d, want %d (%v)", tc.path, rec.Code, tc.want, body)
		}
		if body["error"] == "" {
			t.Errorf("GET %s: no error message", tc.path)
		}
	}
}

func TestTimeout(t *testing.T) {
	s := testServer(t)
	s.Timeout = time.Nanosecond
	rec, body := get(t, s, "/debug?q=saffron+scented+candle&strategy=RE")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("status = %d (%v); a nanosecond budget must abort probing", rec.Code, body)
	}
}

func TestSearchPartialEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/search?q=saffron+scented+incense&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	if results := body["results"].([]any); len(results) != 0 {
		t.Fatalf("dead query returned full results: %v", results)
	}
	partials, ok := body["partials"].([]any)
	if !ok || len(partials) == 0 {
		t.Fatalf("no partials for dead query: %v", body)
	}
	first := partials[0].(map[string]any)
	if covered := first["covered"].([]any); len(covered) == 0 {
		t.Errorf("partial without coverage: %v", first)
	}
}
