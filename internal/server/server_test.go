package server

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"kwsdbg/internal/core"
	"kwsdbg/internal/figure2"
	"kwsdbg/internal/lattice"
	"kwsdbg/internal/probecache"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	eng, err := figure2.Engine()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(eng, lattice.Options{MaxJoins: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(sys)
	s.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	return s
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, rec.Body.String())
	}
	return rec, body
}

func TestHealth(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if body["status"] != "ok" || body["lattice_nodes"].(float64) <= 0 {
		t.Errorf("body = %v", body)
	}
}

func TestDebugEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/debug?q=saffron+scented+candle&strategy=TDWR&sql=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	nonAnswers := body["non_answers"].([]any)
	if len(nonAnswers) != 4 {
		t.Fatalf("non_answers = %d", len(nonAnswers))
	}
	first := nonAnswers[0].(map[string]any)["query"].(map[string]any)
	if first["sql"] == nil || !strings.HasPrefix(first["sql"].(string), "SELECT") {
		t.Errorf("sql=1 did not include SQL: %v", first)
	}
	stats := body["stats"].(map[string]any)
	if stats["strategy"] != "TDWR" {
		t.Errorf("strategy = %v", stats["strategy"])
	}
}

func TestSearchEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/search?q=scented+candle&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	top := results[0].(map[string]any)
	if top["score"].(float64) <= 0 || top["tree"] == "" {
		t.Errorf("top result = %v", top)
	}
	if _, ok := top["tuple"].(map[string]any); !ok {
		t.Errorf("tuple missing: %v", top)
	}
	// Missing keyword reports rather than errors.
	rec, body = get(t, s, "/search?q=zzz+candle")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if missing := body["missing"].([]any); len(missing) != 1 || missing[0] != "zzz" {
		t.Errorf("missing = %v", body["missing"])
	}
}

func TestBadRequests(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/debug", http.StatusBadRequest},
		{"/debug?q=", http.StatusBadRequest},
		{"/debug?q=a+b+c+d", http.StatusUnprocessableEntity}, // too many keywords
		{"/debug?q=x&strategy=NOPE", http.StatusBadRequest},
		{"/search", http.StatusBadRequest},
		{"/search?q=x&k=0", http.StatusBadRequest},
		{"/search?q=x&k=9999", http.StatusBadRequest},
		{"/search?q=x&k=abc", http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec, body := get(t, s, tc.path)
		if rec.Code != tc.want {
			t.Errorf("GET %s: status %d, want %d (%v)", tc.path, rec.Code, tc.want, body)
		}
		if body["error"] == "" {
			t.Errorf("GET %s: no error message", tc.path)
		}
	}
}

func TestTimeout(t *testing.T) {
	s := testServer(t)
	s.Timeout = time.Nanosecond
	rec, body := get(t, s, "/debug?q=saffron+scented+candle&strategy=RE")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("status = %d (%v); a nanosecond budget must abort probing", rec.Code, body)
	}
}

func TestSearchPartialEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/search?q=saffron+scented+incense&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	if results := body["results"].([]any); len(results) != 0 {
		t.Fatalf("dead query returned full results: %v", results)
	}
	partials, ok := body["partials"].([]any)
	if !ok || len(partials) == 0 {
		t.Fatalf("no partials for dead query: %v", body)
	}
	first := partials[0].(map[string]any)
	if covered := first["covered"].([]any); len(covered) == 0 {
		t.Errorf("partial without coverage: %v", first)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	// One debug run drives the whole pipeline so every layer's metrics move.
	rec, _ := get(t, s, "/debug?q=saffron+scented+candle&strategy=BU")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, req)
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", mrec.Code)
	}
	if ct := mrec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := mrec.Body.String()
	for _, want := range []string{
		`kwsdbg_probe_total{strategy="BU"}`,
		"kwsdbg_phase_seconds_bucket",
		"kwsdbg_lattice_nodes",
		"kwsdbg_lattice_build_seconds",
		"kwsdbg_sql_exec_total",
		"kwsdbg_invidx_lookup_total",
		`kwsdbg_http_requests_total{path="/debug",status="200"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	// The probe counter must be non-zero after a real debug run.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `kwsdbg_probe_total{strategy="BU"}`) {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("probe counter still zero: %s", line)
			}
		}
	}
}

func TestDebugTrace(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/debug?q=saffron+scented+candle&strategy=TD&trace=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	trace, ok := body["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace in response: %v", body)
	}
	if trace["name"] != "debug" {
		t.Errorf("root span = %v", trace["name"])
	}
	children, _ := trace["children"].([]any)
	var phase3 map[string]any
	names := []string{}
	for _, c := range children {
		span := c.(map[string]any)
		names = append(names, span["name"].(string))
		if span["name"] == "phase3" {
			phase3 = span
		}
	}
	if len(names) != 2 || names[0] != "phase12" || names[1] != "phase3" {
		t.Fatalf("span children = %v", names)
	}
	// The trace's probe accounting must agree with the Stats the core computes.
	attrs := phase3["attrs"].(map[string]any)
	stats := body["stats"].(map[string]any)
	if attrs["probes"] != stats["sql_executed"] {
		t.Errorf("trace probes = %v, stats sql_executed = %v", attrs["probes"], stats["sql_executed"])
	}
	if attrs["strategy"] != "TD" {
		t.Errorf("trace strategy = %v", attrs["strategy"])
	}
	if attrs["inferred"] != stats["inferred"] {
		t.Errorf("trace inferred = %v, stats inferred = %v", attrs["inferred"], stats["inferred"])
	}
	// Without trace=1 the field is absent.
	_, body = get(t, s, "/debug?q=saffron+scented+candle")
	if _, present := body["trace"]; present {
		t.Error("trace present without trace=1")
	}
}

func TestRequestIDHeader(t *testing.T) {
	s := testServer(t)
	rec, _ := get(t, s, "/healthz")
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID header")
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
}

// TestDebugWorkersAndCache exercises the /debug concurrency and cache knobs:
// results must be identical across worker counts, a warm cache must report
// hits while sql_executed stays fixed, and cache=0 must bypass it again.
func TestDebugWorkersAndCache(t *testing.T) {
	s := testServer(t)
	s.sys.SetProbeCache(probecache.New(probecache.Config{}))

	stats := func(path string) (map[string]any, map[string]any) {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: status = %d: %v", path, rec.Code, body)
		}
		return body, body["stats"].(map[string]any)
	}

	base, st0 := stats("/debug?q=saffron+scented+candle&strategy=BUWR&cache=0")
	if st0["cache_hits"].(float64) != 0 {
		t.Fatalf("cache=0 run reported cache hits: %v", st0)
	}
	for _, path := range []string{
		"/debug?q=saffron+scented+candle&strategy=BUWR&workers=4&cache=0",
		"/debug?q=saffron+scented+candle&strategy=BUWR&workers=4",
	} {
		body, st := stats(path)
		if st["sql_executed"] != st0["sql_executed"] {
			t.Errorf("%s: sql_executed = %v, want %v", path, st["sql_executed"], st0["sql_executed"])
		}
		if !reflect.DeepEqual(body["answers"], base["answers"]) ||
			!reflect.DeepEqual(body["non_answers"], base["non_answers"]) {
			t.Errorf("%s: output diverged from serial run", path)
		}
	}
	// The previous request warmed the cache; a repeat must hit it.
	_, st := stats("/debug?q=saffron+scented+candle&strategy=BUWR")
	if st["cache_hits"].(float64) == 0 {
		t.Errorf("warm repeat reported no cache hits: %v", st)
	}
	if got := st["sql_issued"].(float64); got != st["sql_executed"].(float64)-st["cache_hits"].(float64) {
		t.Errorf("sql_issued = %v, want executed - hits", got)
	}
	// And a bypass run right after must not.
	_, st = stats("/debug?q=saffron+scented+candle&strategy=BUWR&cache=0")
	if st["cache_hits"].(float64) != 0 {
		t.Errorf("cache=0 after warmup still hit: %v", st)
	}

	rec, _ := get(t, s, "/debug?q=candle&workers=banana")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("workers=banana: status = %d, want 400", rec.Code)
	}
	// Out-of-range worker counts are clamped, not rejected: the cap is a
	// server resource bound, and the scheduler's output is identical at any
	// worker count anyway.
	body, st9000 := stats("/debug?q=saffron+scented+candle&strategy=BUWR&workers=9000&cache=0")
	if st9000["sql_executed"] != st0["sql_executed"] {
		t.Errorf("workers=9000: sql_executed = %v, want %v", st9000["sql_executed"], st0["sql_executed"])
	}
	if !reflect.DeepEqual(body["answers"], base["answers"]) {
		t.Error("workers=9000: output diverged from serial run")
	}
	rec, _ = get(t, s, "/debug?q=saffron+scented+candle&workers=-2")
	if rec.Code != http.StatusOK {
		t.Errorf("workers=-2: status = %d, want 200 (clamped to 1)", rec.Code)
	}
}

// TestHealthProbeCacheStats checks /healthz surfaces cache counters once a
// cache is installed.
func TestHealthProbeCacheStats(t *testing.T) {
	s := testServer(t)
	if _, body := get(t, s, "/healthz"); body["probe_cache"] != nil {
		t.Fatal("probe_cache reported with no cache installed")
	}
	s.sys.SetProbeCache(probecache.New(probecache.Config{}))
	get(t, s, "/debug?q=saffron+scented+candle&strategy=BUWR")
	get(t, s, "/debug?q=saffron+scented+candle&strategy=BUWR")
	_, body := get(t, s, "/healthz")
	pc, ok := body["probe_cache"].(map[string]any)
	if !ok {
		t.Fatalf("no probe_cache in %v", body)
	}
	if pc["entries"].(float64) <= 0 || pc["hits"].(float64) <= 0 {
		t.Errorf("probe_cache stats = %v, want entries and hits > 0", pc)
	}
	for _, key := range []string{"evictions", "evictions_capacity", "evictions_stale"} {
		if _, present := pc[key]; !present {
			t.Errorf("probe_cache stats missing %q: %v", key, pc)
		}
	}
}

// TestAdmissionShedding saturates the admission semaphore and checks the
// overload path: 429, a Retry-After hint, and the shed counter moving. Once
// the slot frees, the same request must be admitted again.
func TestAdmissionShedding(t *testing.T) {
	s := testServer(t)
	s.MaxInflight = 1
	s.AdmissionWait = 5 * time.Millisecond

	release, ok := s.admit(context.Background())
	if !ok {
		t.Fatal("first admission into an idle server failed")
	}
	shedBefore := mShed.Value()
	rec, body := get(t, s, "/debug?q=saffron+scented+candle")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated /debug: status = %d (%v), want 429", rec.Code, body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After header")
	}
	if body["error"] == "" {
		t.Error("429 without an error message")
	}
	if got := mShed.Value(); got != shedBefore+1 {
		t.Errorf("kwsdbg_shed_total = %v, want %v", got, shedBefore+1)
	}
	rec, _ = get(t, s, "/search?q=scented+candle")
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("saturated /search: status = %d, want 429", rec.Code)
	}

	release()
	rec, body = get(t, s, "/debug?q=saffron+scented+candle")
	if rec.Code != http.StatusOK {
		t.Errorf("after release: status = %d (%v), want 200", rec.Code, body)
	}
	if mInflight.Value() != 0 {
		t.Errorf("kwsdbg_inflight = %v after all requests finished, want 0", mInflight.Value())
	}
}

// TestDebugBudgetParam drives the partial-result contract end to end: a
// starved budget yields HTTP 200 with incomplete=true, a reason, sql_executed
// within the budget, and the unclassified remainder listed — and the request
// parameter can only tighten the server-wide cap, never raise it.
func TestDebugBudgetParam(t *testing.T) {
	s := testServer(t)
	exhaustedBefore := mBudgetExhausted.With(core.ReasonProbeBudget).Value()
	rec, body := get(t, s, "/debug?q=saffron+scented+candle&strategy=RE&budget=1&cache=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("budget=1: status = %d (%v), want 200 with a partial result", rec.Code, body)
	}
	if body["incomplete"] != true || body["incomplete_reason"] != core.ReasonProbeBudget {
		t.Fatalf("budget=1: incomplete = %v / %v", body["incomplete"], body["incomplete_reason"])
	}
	stats := body["stats"].(map[string]any)
	if stats["sql_executed"].(float64) > 1 {
		t.Errorf("budget=1: sql_executed = %v, want <= 1", stats["sql_executed"])
	}
	if un, _ := body["unclassified"].([]any); len(un) == 0 {
		t.Errorf("budget=1: no unclassified queries in %v", body)
	}
	if got := mBudgetExhausted.With(core.ReasonProbeBudget).Value(); got != exhaustedBefore+1 {
		t.Errorf("kwsdbg_probe_budget_exhausted_total = %v, want %v", got, exhaustedBefore+1)
	}

	// A generous budget completes normally.
	rec, body = get(t, s, "/debug?q=saffron+scented+candle&strategy=RE&budget=100000&cache=0")
	if rec.Code != http.StatusOK || body["incomplete"] == true {
		t.Fatalf("budget=100000: status = %d, incomplete = %v", rec.Code, body["incomplete"])
	}

	// The request cannot raise the server-wide cap.
	s.ProbeBudget = 1
	rec, body = get(t, s, "/debug?q=saffron+scented+candle&strategy=RE&budget=100000&cache=0")
	if rec.Code != http.StatusOK || body["incomplete"] != true {
		t.Fatalf("server cap 1, budget=100000: status = %d, incomplete = %v (the param must not loosen the cap)",
			rec.Code, body["incomplete"])
	}
	if st := body["stats"].(map[string]any); st["sql_executed"].(float64) > 1 {
		t.Errorf("server cap 1: sql_executed = %v, want <= 1", st["sql_executed"])
	}
}

// TestGovernanceParamValidation rejects malformed deadline_ms and budget
// values outright; governance parameters must never fail open.
func TestGovernanceParamValidation(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/debug?q=candle&deadline_ms=abc",
		"/debug?q=candle&deadline_ms=0",
		"/debug?q=candle&deadline_ms=-50",
		"/debug?q=candle&budget=abc",
		"/debug?q=candle&budget=0",
		"/debug?q=candle&budget=-3",
	} {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status = %d (%v), want 400", path, rec.Code, body)
		}
	}
	// A generous deadline (clamped by the server timeout) completes normally.
	rec, body := get(t, s, "/debug?q=saffron+scented+candle&deadline_ms=60000")
	if rec.Code != http.StatusOK || body["incomplete"] == true {
		t.Errorf("deadline_ms=60000: status = %d, incomplete = %v", rec.Code, body["incomplete"])
	}
}
