package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kwsdbg/internal/probecache"
)

func post(t *testing.T, s *Server, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	out := map[string]any{}
	if rec.Body.Len() > 0 {
		decodeJSON(t, rec, &out)
	}
	return rec, out
}

func decodeJSON(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
}

func TestWriteEndpoint(t *testing.T) {
	s := testServer(t)
	s.sys.SetProbeCache(probecache.New(probecache.Config{}))

	before := s.sys.Engine().DataVersion()
	rec, body := post(t, s, "/write",
		`{"sql": "INSERT INTO PType VALUES (4, 'soap')"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	if body["rows_inserted"].(float64) != 1 {
		t.Fatalf("rows_inserted = %v", body["rows_inserted"])
	}
	if uint64(body["data_version"].(float64)) <= before {
		t.Fatalf("data_version did not advance: %v <= %d", body["data_version"], before)
	}
	if _, ok := body["probe_cache"]; !ok {
		t.Fatalf("response missing probe_cache stats: %v", body)
	}
}

// TestWriteSuspectsOnlyIntersectingVerdicts drives the full HTTP loop: warm
// the cache with a debug run, write a row into a table the run's dead
// verdicts join, and check the next run repairs rather than recomputes — the
// cache reports suspects and repairs, not a wholesale flush.
func TestWriteSuspectsOnlyIntersectingVerdicts(t *testing.T) {
	s := testServer(t)
	s.sys.SetProbeCache(probecache.New(probecache.Config{}))

	if rec, body := get(t, s, "/debug?q=saffron+scented+candle"); rec.Code != http.StatusOK {
		t.Fatalf("cold debug: %d %v", rec.Code, body)
	}
	warmed := s.sys.ProbeCache().Snapshot().Entries
	if warmed == 0 {
		t.Fatal("cold run cached nothing")
	}

	// 'saffron' items exist after this write, so some dead verdicts over
	// Item must flip; all of them sit behind suspect downgrades.
	rec, body := post(t, s, "/write",
		`{"sql": "INSERT INTO Item VALUES (5, 'saffron scented candle', 2, 4, 4, 9.5, 'new stock')"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("write: %d %v", rec.Code, body)
	}

	rec2, body2 := get(t, s, "/debug?q=saffron+scented+candle")
	if rec2.Code != http.StatusOK {
		t.Fatalf("warm debug: %d %v", rec2.Code, body2)
	}
	st := s.sys.ProbeCache().Snapshot()
	if st.Suspects == 0 {
		t.Fatalf("write into a probed table produced no suspects: %+v", st)
	}
	if st.Repairs == 0 {
		t.Fatalf("warm run repaired nothing: %+v", st)
	}
	if st.EvictionsStale != 0 {
		t.Fatalf("monotone insert caused stale evictions: %+v", st)
	}
}

func TestWriteRejectsBadRequests(t *testing.T) {
	s := testServer(t)
	if rec, _ := get(t, s, "/write"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /write = %d, want 405", rec.Code)
	}
	if rec, _ := post(t, s, "/write", `{"sql": ""}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty sql = %d, want 400", rec.Code)
	}
	if rec, _ := post(t, s, "/write", `not json`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body = %d, want 400", rec.Code)
	}
	if rec, _ := post(t, s, "/write", `{"sql": "SELECT * FROM Item"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("SELECT body = %d, want 422", rec.Code)
	}
	if rec, _ := post(t, s, "/write", `{"sql": "INSERT INTO Nope VALUES (1)"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown table = %d, want 422", rec.Code)
	}
}
