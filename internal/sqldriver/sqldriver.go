// Package sqldriver exposes the embedded engine through the standard
// database/sql interface. The paper's system talked to PostgreSQL over JDBC;
// the KWS-S layers here talk to the engine over database/sql, which keeps the
// query path shaped the same way (SQL text in, rows out) and lets any code
// written against *sql.DB run unchanged on the embedded engine.
//
// Usage:
//
//	e, _ := engine.Load(script)
//	db := sqldriver.OpenDB(e)
//	defer db.Close()
//	rows, err := db.Query("SELECT 1 FROM Item WHERE name CONTAINS 'candle' LIMIT 1")
//
// Placeholders are not supported: a KWS-S system generates fully-instantiated
// SQL strings (the lattice templates are instantiated in Phase 1), so the
// driver keeps to that contract.
package sqldriver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"kwsdbg/internal/catalog"
	"kwsdbg/internal/engine"
)

// DriverName is the name under which the driver registers with database/sql.
const DriverName = "kwsdb"

var (
	registry sync.Map // dsn -> *engine.Engine
	nextDSN  atomic.Int64
)

func init() {
	sql.Register(DriverName, &Driver{})
}

// Register makes an engine reachable under the given DSN, so that
// sql.Open("kwsdb", dsn) connects to it.
func Register(dsn string, e *engine.Engine) {
	registry.Store(dsn, e)
}

// Unregister removes a DSN registration. Open connections keep working; new
// sql.Open calls for the DSN fail.
func Unregister(dsn string) {
	registry.Delete(dsn)
}

// OpenDB registers the engine under a fresh DSN and returns a *sql.DB for it.
// This is the one-call path the examples and the debugger use.
func OpenDB(e *engine.Engine) *sql.DB {
	dsn := "engine-" + strconv.FormatInt(nextDSN.Add(1), 10)
	Register(dsn, e)
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		// Open with a registered driver and well-formed DSN cannot fail.
		panic(fmt.Sprintf("sqldriver: OpenDB: %v", err))
	}
	return db
}

// Driver implements driver.Driver.
type Driver struct{}

// Open connects to the engine registered under the DSN.
func (Driver) Open(dsn string) (driver.Conn, error) {
	e, ok := registry.Load(dsn)
	if !ok {
		return nil, fmt.Errorf("sqldriver: no engine registered under %q", dsn)
	}
	return &conn{eng: e.(*engine.Engine)}, nil
}

// conn is a stateless connection to one engine.
type conn struct {
	eng *engine.Engine
}

var (
	_ driver.Conn           = (*conn)(nil)
	_ driver.QueryerContext = (*conn)(nil)
	_ driver.ExecerContext  = (*conn)(nil)
)

// Prepare returns a statement that re-executes the SQL text on each call.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{conn: c, query: query}, nil
}

// Close releases the connection (a no-op: the engine is shared).
func (c *conn) Close() error { return nil }

// Begin is required by driver.Conn; the engine is read-mostly and does not
// support transactions.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("sqldriver: transactions are not supported")
}

// QueryContext executes a SELECT directly, bypassing Prepare.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(args) > 0 {
		return nil, fmt.Errorf("sqldriver: placeholders are not supported")
	}
	res, err := c.eng.QueryContext(ctx, query)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// ExecContext executes an INSERT directly, bypassing Prepare.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(args) > 0 {
		return nil, fmt.Errorf("sqldriver: placeholders are not supported")
	}
	n, err := c.eng.Exec(query)
	if err != nil {
		return nil, err
	}
	return execResult{rows: n}, nil
}

// stmt is a prepared statement: just retained SQL text.
type stmt struct {
	conn  *conn
	query string
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return 0 }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("sqldriver: placeholders are not supported")
	}
	return s.conn.ExecContext(context.Background(), s.query, nil)
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("sqldriver: placeholders are not supported")
	}
	return s.conn.QueryContext(context.Background(), s.query, nil)
}

// execResult reports affected rows; the engine has no auto-increment IDs.
type execResult struct{ rows int64 }

func (r execResult) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("sqldriver: LastInsertId is not supported")
}

func (r execResult) RowsAffected() (int64, error) { return r.rows, nil }

// rows adapts an engine result set to driver.Rows.
type rows struct {
	res *engine.Result
	pos int
}

func (r *rows) Columns() []string { return r.res.Columns }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.pos]
	r.pos++
	for i, v := range row {
		switch v.Kind {
		case catalog.Int:
			dest[i] = v.I
		case catalog.Float:
			dest[i] = v.F
		case catalog.Text:
			dest[i] = v.S
		default:
			return fmt.Errorf("sqldriver: unsupported value kind %d", int(v.Kind))
		}
	}
	return nil
}
