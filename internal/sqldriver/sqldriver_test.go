package sqldriver

import (
	"context"
	"database/sql"
	"strings"
	"sync"
	"testing"

	"kwsdbg/internal/engine"
)

const script = `
CREATE TABLE PType (id INT PRIMARY KEY, ptype TEXT);
CREATE TABLE Item (id INT PRIMARY KEY, name TEXT, ptype INT, cost FLOAT,
	FOREIGN KEY (ptype) REFERENCES PType(id));
INSERT INTO PType VALUES (1, 'oil'), (2, 'candle');
INSERT INTO Item VALUES
	(1, 'saffron scented oil', 1, 4.99),
	(2, 'vanilla scented candle', 2, 5.99);
`

func openDB(t *testing.T) *sql.DB {
	t.Helper()
	e, err := engine.Load(script)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	db := OpenDB(e)
	t.Cleanup(func() { db.Close() })
	return db
}

func TestQueryRows(t *testing.T) {
	db := openDB(t)
	rows, err := db.Query("SELECT i.name, i.cost, p.id FROM Item i, PType p WHERE i.ptype = p.id AND p.ptype CONTAINS 'candle'")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatalf("Columns: %v", err)
	}
	if want := []string{"i.name", "i.cost", "p.id"}; strings.Join(cols, ",") != strings.Join(want, ",") {
		t.Errorf("columns = %v", cols)
	}
	var n int
	for rows.Next() {
		var name string
		var cost float64
		var id int64
		if err := rows.Scan(&name, &cost, &id); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if name != "vanilla scented candle" || cost != 5.99 || id != 2 {
			t.Errorf("row = %q %v %d", name, cost, id)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows.Err: %v", err)
	}
	if n != 1 {
		t.Errorf("got %d rows, want 1", n)
	}
}

func TestQueryRowExistence(t *testing.T) {
	db := openDB(t)
	var one int
	err := db.QueryRow("SELECT 1 FROM Item WHERE name CONTAINS 'saffron' LIMIT 1").Scan(&one)
	if err != nil || one != 1 {
		t.Fatalf("existence probe: %v, %d", err, one)
	}
	err = db.QueryRow("SELECT 1 FROM Item WHERE name CONTAINS 'nonexistent' LIMIT 1").Scan(&one)
	if err != sql.ErrNoRows {
		t.Fatalf("dead probe err = %v, want ErrNoRows", err)
	}
}

func TestExecInsert(t *testing.T) {
	db := openDB(t)
	res, err := db.Exec("INSERT INTO Item VALUES (3, 'pine incense', 1, 2.5)")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	n, err := res.RowsAffected()
	if err != nil || n != 1 {
		t.Fatalf("RowsAffected = %d, %v", n, err)
	}
	if _, err := res.LastInsertId(); err == nil {
		t.Error("LastInsertId succeeded, want unsupported error")
	}
	var count int64
	if err := db.QueryRow("SELECT COUNT(*) FROM Item").Scan(&count); err != nil || count != 3 {
		t.Fatalf("count = %d, %v", count, err)
	}
}

func TestPreparedStatement(t *testing.T) {
	db := openDB(t)
	st, err := db.Prepare("SELECT COUNT(*) FROM PType")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	defer st.Close()
	for i := 0; i < 3; i++ {
		var n int64
		if err := st.QueryRow().Scan(&n); err != nil || n != 2 {
			t.Fatalf("iteration %d: %d, %v", i, n, err)
		}
	}
	stExec, err := db.Prepare("INSERT INTO PType VALUES (3, 'incense')")
	if err != nil {
		t.Fatalf("Prepare exec: %v", err)
	}
	defer stExec.Close()
	if _, err := stExec.Exec(); err != nil {
		t.Fatalf("prepared Exec: %v", err)
	}
}

func TestErrors(t *testing.T) {
	db := openDB(t)
	if _, err := db.Query("SELECT * FROM nope"); err == nil {
		t.Error("query unknown table succeeded")
	}
	if _, err := db.Query("SELECT * FROM Item WHERE id = ?", 1); err == nil || !strings.Contains(err.Error(), "placeholder") {
		t.Errorf("placeholder query err = %v", err)
	}
	if _, err := db.Exec("INSERT INTO Item VALUES (?, 'x', 1, 1.0)", 9); err == nil || !strings.Contains(err.Error(), "placeholder") {
		t.Errorf("placeholder exec err = %v", err)
	}
	if _, err := db.Begin(); err == nil {
		t.Error("Begin succeeded, want unsupported error")
	}
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err == nil {
		t.Error("runtime DDL succeeded")
	}
}

func TestUnknownDSN(t *testing.T) {
	db, err := sql.Open(DriverName, "never-registered")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	if err := db.Ping(); err == nil {
		t.Error("Ping on unknown DSN succeeded")
	}
}

func TestRegisterUnregister(t *testing.T) {
	e, err := engine.Load("CREATE TABLE t (a INT); INSERT INTO t VALUES (7)")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	Register("my-dsn", e)
	db, err := sql.Open(DriverName, "my-dsn")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var a int64
	if err := db.QueryRow("SELECT a FROM t").Scan(&a); err != nil || a != 7 {
		t.Fatalf("scan = %d, %v", a, err)
	}
	db.Close()
	Unregister("my-dsn")
	db2, _ := sql.Open(DriverName, "my-dsn")
	defer db2.Close()
	if err := db2.Ping(); err == nil {
		t.Error("Ping after Unregister succeeded")
	}
}

func TestContextCancellation(t *testing.T) {
	db := openDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "SELECT * FROM Item"); err == nil {
		t.Error("cancelled QueryContext succeeded")
	}
	if _, err := db.ExecContext(ctx, "INSERT INTO PType VALUES (9, 'x')"); err == nil {
		t.Error("cancelled ExecContext succeeded")
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := openDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n int64
			if err := db.QueryRow("SELECT COUNT(*) FROM Item WHERE name CONTAINS 'scented'").Scan(&n); err != nil {
				errs <- err
				return
			}
			if n != 2 {
				errs <- sql.ErrNoRows
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query: %v", err)
	}
}
