package sqltext

import "kwsdbg/internal/catalog"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Name        string
	Columns     []catalog.Column
	ForeignKeys []ForeignKey
}

// ForeignKey is one FOREIGN KEY (col) REFERENCES table(col) clause.
type ForeignKey struct {
	Column   string
	RefTable string
	RefCol   string
}

// Insert is an INSERT INTO ... VALUES statement; each row is a literal list.
type Insert struct {
	Table string
	Rows  [][]Literal
}

// Select is a select-project-join query with optional WHERE and LIMIT.
type Select struct {
	Projection Projection
	From       []TableRef
	// Where is the conjunction of predicates; empty means no WHERE clause.
	Where []Predicate
	// Limit is the row limit, or -1 when absent.
	Limit int
}

// Projection selects what SELECT emits.
type Projection struct {
	Star  bool     // SELECT *
	Count bool     // SELECT COUNT(*)
	One   bool     // SELECT 1 (existence probe)
	Cols  []ColRef // explicit column list
}

// TableRef is one FROM-list entry. Alias defaults to the table name.
type TableRef struct {
	Table string
	Alias string
}

// ColRef references a column, optionally qualified by a FROM alias.
type ColRef struct {
	Qualifier string // alias or table; empty means unqualified
	Column    string
}

// LitKind is the type of a literal.
type LitKind int

// Literal kinds.
const (
	LitInt LitKind = iota
	LitFloat
	LitString
)

// Literal is a typed constant.
type Literal struct {
	Kind LitKind
	I    int64
	F    float64
	S    string
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
	OpNotLike
	OpContains
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLike:
		return "LIKE"
	case OpNotLike:
		return "NOT LIKE"
	case OpContains:
		return "CONTAINS"
	default:
		return "?"
	}
}

// Predicate is one WHERE-clause atom: a comparison or an OR-group.
type Predicate interface{ pred() }

// Comparison is "left op right" where right is a column or a literal.
type Comparison struct {
	Left  ColRef
	Op    CmpOp
	Right Operand
}

// OrGroup is a parenthesized disjunction of predicates.
type OrGroup struct {
	Terms []Predicate
}

// Operand is the right-hand side of a comparison.
type Operand struct {
	IsCol bool
	Col   ColRef
	Lit   Literal
}

// ColOperand wraps a column reference as an operand.
func ColOperand(c ColRef) Operand { return Operand{IsCol: true, Col: c} }

// LitOperand wraps a literal as an operand.
func LitOperand(l Literal) Operand { return Operand{Lit: l} }

// StringLit builds a string literal.
func StringLit(s string) Literal { return Literal{Kind: LitString, S: s} }

// IntLit builds an integer literal.
func IntLit(i int64) Literal { return Literal{Kind: LitInt, I: i} }

// FloatLit builds a float literal.
func FloatLit(f float64) Literal { return Literal{Kind: LitFloat, F: f} }

func (*CreateTable) stmt() {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}

func (Comparison) pred() {}
func (OrGroup) pred()    {}
