package sqltext

import "testing"

func mustSelect(t *testing.T, sql string) *Select {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%s): %v", sql, err)
	}
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("Parse(%s) = %T, want *Select", sql, stmt)
	}
	return sel
}

// CanonicalKey must collapse spelling variants of the same query — the
// property the engine's text-path plan cache depends on — and must be a
// fixpoint: parsing the key and keying again changes nothing.
func TestCanonicalKey(t *testing.T) {
	groups := [][]string{
		{
			"SELECT * FROM Item",
			"select  *  from  Item",
			"SELECT *\nFROM Item",
		},
		{
			"SELECT 1 FROM Item t0 WHERE t0.name CONTAINS 'candle' LIMIT 1",
			"SELECT 1 FROM Item AS t0 WHERE (t0.name CONTAINS 'candle') LIMIT 1",
		},
		{
			"SELECT t1.name FROM PType t0, Item t1 WHERE t1.ptype = t0.id AND t0.ptype = 'oil'",
			"SELECT t1.name FROM PType AS t0 , Item AS t1 WHERE (t1.ptype = t0.id) AND (t0.ptype = 'oil')",
		},
	}
	seen := map[string]int{}
	for gi, group := range groups {
		key0 := CanonicalKey(mustSelect(t, group[0]))
		for _, sql := range group[1:] {
			if key := CanonicalKey(mustSelect(t, sql)); key != key0 {
				t.Errorf("variant %q keyed %q, want %q", sql, key, key0)
			}
		}
		// Fixpoint: the key is itself parseable and keys to itself.
		if again := CanonicalKey(mustSelect(t, key0)); again != key0 {
			t.Errorf("CanonicalKey not a fixpoint: %q -> %q", key0, again)
		}
		// Distinct queries must not collide.
		if prev, ok := seen[key0]; ok {
			t.Errorf("groups %d and %d share key %q", prev, gi, key0)
		}
		seen[key0] = gi
	}
}
