package sqltext

import (
	"reflect"
	"testing"
)

// FuzzParse asserts the parser never panics, and that anything it accepts
// survives a Print/Parse round trip unchanged.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT 1 FROM Item AS t0, PType AS t1 WHERE t0.ptype = t1.id LIMIT 1",
		"SELECT COUNT(*) FROM t WHERE (a CONTAINS 'x' OR b LIKE '%y%') AND c <= -1.5",
		"INSERT INTO t VALUES (1, 'a''b', 2.5), (2, 'c', 0.0)",
		"CREATE TABLE t (id INT PRIMARY KEY, s TEXT, FOREIGN KEY (id) REFERENCES u(v))",
		"SELECT",
		"'unterminated",
		"SELECT * FROM t WHERE a = ",
		";;;",
		"select lower case keywords from t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		printed := Print(stmt)
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", printed, src, err)
		}
		if !reflect.DeepEqual(stmt, again) {
			t.Fatalf("round trip changed AST:\nsrc:   %q\nprint: %q", src, printed)
		}
	})
}
