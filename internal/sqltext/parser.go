package sqltext

import (
	"fmt"
	"strconv"
	"strings"

	"kwsdbg/internal/catalog"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SQL statement. A trailing semicolon is allowed.
func Parse(src string) (Statement, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqltext: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var stmts []Statement
	for {
		for p.acceptPunct(";") {
		}
		if p.peek().Kind == TokEOF {
			return stmts, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptPunct(";") && p.peek().Kind != TokEOF {
			return nil, p.errorf("expected ';' or end of input")
		}
	}
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	where := "end of input"
	if t.Kind != TokEOF {
		where = fmt.Sprintf("%q at offset %d", t.Text, t.Pos)
	}
	return fmt.Errorf("sqltext: %s (near %s)", fmt.Sprintf(format, args...), where)
}

// acceptKeyword consumes the next token if it is the given keyword.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Kind == TokIdent && strings.EqualFold(t.Text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if (t.Kind == TokPunct || t.Kind == TokOp) && t.Text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errorf("expected %q", s)
	}
	return nil
}

// ident consumes a non-keyword identifier.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent || IsKeyword(t.Text) {
		return "", p.errorf("expected identifier")
	}
	p.advance()
	return t.Text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("CREATE"):
		return p.createTable()
	case p.acceptKeyword("INSERT"):
		return p.insert()
	case p.acceptKeyword("SELECT"):
		return p.selectStmt()
	default:
		return nil, p.errorf("expected CREATE, INSERT, or SELECT")
	}
}

func (p *parser) createTable() (Statement, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.acceptKeyword("FOREIGN") {
			fk, err := p.foreignKey()
			if err != nil {
				return nil, err
			}
			ct.ForeignKeys = append(ct.ForeignKeys, fk)
		} else {
			col, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
		}
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return ct, nil
	}
}

func (p *parser) columnDef() (catalog.Column, error) {
	name, err := p.ident()
	if err != nil {
		return catalog.Column{}, err
	}
	var typ catalog.ColType
	switch {
	case p.acceptKeyword("INT"):
		typ = catalog.Int
	case p.acceptKeyword("TEXT"):
		typ = catalog.Text
	case p.acceptKeyword("FLOAT"):
		typ = catalog.Float
	default:
		return catalog.Column{}, p.errorf("expected column type INT, TEXT, or FLOAT")
	}
	col := catalog.Column{Name: name, Type: typ}
	if p.acceptKeyword("PRIMARY") {
		if err := p.expectKeyword("KEY"); err != nil {
			return catalog.Column{}, err
		}
		col.PrimaryKey = true
	}
	return col, nil
}

func (p *parser) foreignKey() (ForeignKey, error) {
	var fk ForeignKey
	if err := p.expectKeyword("KEY"); err != nil {
		return fk, err
	}
	if err := p.expectPunct("("); err != nil {
		return fk, err
	}
	col, err := p.ident()
	if err != nil {
		return fk, err
	}
	fk.Column = col
	if err := p.expectPunct(")"); err != nil {
		return fk, err
	}
	if err := p.expectKeyword("REFERENCES"); err != nil {
		return fk, err
	}
	if fk.RefTable, err = p.ident(); err != nil {
		return fk, err
	}
	if err := p.expectPunct("("); err != nil {
		return fk, err
	}
	if fk.RefCol, err = p.ident(); err != nil {
		return fk, err
	}
	if err := p.expectPunct(")"); err != nil {
		return fk, err
	}
	return fk, nil
}

func (p *parser) insert() (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Literal
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptPunct(",") {
			return ins, nil
		}
	}
}

func (p *parser) literal() (Literal, error) {
	t := p.peek()
	switch t.Kind {
	case TokString:
		p.advance()
		return StringLit(t.Text), nil
	case TokNumber:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return Literal{}, p.errorf("bad float literal %q", t.Text)
			}
			return FloatLit(f), nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return Literal{}, p.errorf("bad integer literal %q", t.Text)
		}
		return IntLit(i), nil
	default:
		return Literal{}, p.errorf("expected literal")
	}
}

func (p *parser) selectStmt() (Statement, error) {
	sel := &Select{Limit: -1}
	proj, err := p.projection()
	if err != nil {
		return nil, err
	}
	sel.Projection = proj
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, tr)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		for {
			pr, err := p.predicate()
			if err != nil {
				return nil, err
			}
			sel.Where = append(sel.Where, pr)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errorf("expected LIMIT count")
		}
		p.advance()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) projection() (Projection, error) {
	if p.acceptPunct("*") {
		return Projection{Star: true}, nil
	}
	if p.acceptKeyword("COUNT") {
		if err := p.expectPunct("("); err != nil {
			return Projection{}, err
		}
		if err := p.expectPunct("*"); err != nil {
			return Projection{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return Projection{}, err
		}
		return Projection{Count: true}, nil
	}
	if t := p.peek(); t.Kind == TokNumber && t.Text == "1" {
		p.advance()
		return Projection{One: true}, nil
	}
	var cols []ColRef
	for {
		c, err := p.colRef()
		if err != nil {
			return Projection{}, err
		}
		cols = append(cols, c)
		if !p.acceptPunct(",") {
			return Projection{Cols: cols}, nil
		}
	}
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name, Alias: name}
	if p.acceptKeyword("AS") {
		if tr.Alias, err = p.ident(); err != nil {
			return TableRef{}, err
		}
		return tr, nil
	}
	// Bare alias: an identifier that is not a keyword.
	if t := p.peek(); t.Kind == TokIdent && !IsKeyword(t.Text) {
		p.advance()
		tr.Alias = t.Text
	}
	return tr, nil
}

func (p *parser) colRef() (ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.acceptPunct(".") {
		second, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: first, Column: second}, nil
	}
	return ColRef{Column: first}, nil
}

// predicate parses a comparison or a parenthesized OR-group.
func (p *parser) predicate() (Predicate, error) {
	if p.acceptPunct("(") {
		var terms []Predicate
		for {
			t, err := p.predicate()
			if err != nil {
				return nil, err
			}
			terms = append(terms, t)
			if p.acceptKeyword("OR") {
				continue
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if len(terms) == 1 {
				return terms[0], nil
			}
			return OrGroup{Terms: terms}, nil
		}
	}
	left, err := p.colRef()
	if err != nil {
		return nil, err
	}
	op, err := p.cmpOp()
	if err != nil {
		return nil, err
	}
	// CONTAINS and LIKE require a string literal on the right.
	if op == OpContains || op == OpLike || op == OpNotLike {
		t := p.peek()
		if t.Kind != TokString {
			return nil, p.errorf("%s requires a string literal", op)
		}
		p.advance()
		return Comparison{Left: left, Op: op, Right: LitOperand(StringLit(t.Text))}, nil
	}
	t := p.peek()
	if t.Kind == TokIdent && !IsKeyword(t.Text) {
		right, err := p.colRef()
		if err != nil {
			return nil, err
		}
		return Comparison{Left: left, Op: op, Right: ColOperand(right)}, nil
	}
	lit, err := p.literal()
	if err != nil {
		return nil, err
	}
	return Comparison{Left: left, Op: op, Right: LitOperand(lit)}, nil
}

func (p *parser) cmpOp() (CmpOp, error) {
	if p.acceptKeyword("NOT") {
		if err := p.expectKeyword("LIKE"); err != nil {
			return 0, err
		}
		return OpNotLike, nil
	}
	if p.acceptKeyword("LIKE") {
		return OpLike, nil
	}
	if p.acceptKeyword("CONTAINS") {
		return OpContains, nil
	}
	t := p.peek()
	ops := map[string]CmpOp{"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}
	if op, ok := ops[t.Text]; ok && (t.Kind == TokPunct || t.Kind == TokOp) {
		p.advance()
		return op, nil
	}
	return 0, p.errorf("expected comparison operator")
}
