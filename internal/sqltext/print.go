package sqltext

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Print renders a statement as canonical SQL text. Printing then re-parsing
// any statement yields an identical AST (property-tested); the lattice uses
// this to materialize query templates as real SQL strings.
func Print(s Statement) string {
	var sb strings.Builder
	switch st := s.(type) {
	case *CreateTable:
		printCreate(&sb, st)
	case *Insert:
		printInsert(&sb, st)
	case *Select:
		printSelect(&sb, st)
	default:
		fmt.Fprintf(&sb, "/* unknown statement %T */", s)
	}
	return sb.String()
}

// CanonicalKey renders a SELECT as its canonical cache-key text. Because the
// printer is a fixpoint of parse (print -> parse -> print is the identity,
// property-tested in print_test.go), every surface spelling of one query —
// extra whitespace, keyword case — converges to the same key after a parse,
// which is what lets the engine's plan cache key compiled handles by query
// identity rather than by byte equality.
func CanonicalKey(sel *Select) string {
	var sb strings.Builder
	printSelect(&sb, sel)
	return sb.String()
}

func printCreate(sb *strings.Builder, ct *CreateTable) {
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(ct.Name)
	sb.WriteString(" (")
	for i, c := range ct.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteByte(' ')
		sb.WriteString(c.Type.String())
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		}
	}
	for _, fk := range ct.ForeignKeys {
		fmt.Fprintf(sb, ", FOREIGN KEY (%s) REFERENCES %s(%s)", fk.Column, fk.RefTable, fk.RefCol)
	}
	sb.WriteByte(')')
}

func printInsert(sb *strings.Builder, ins *Insert) {
	sb.WriteString("INSERT INTO ")
	sb.WriteString(ins.Table)
	sb.WriteString(" VALUES ")
	for i, row := range ins.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for j, lit := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(printLiteral(lit))
		}
		sb.WriteByte(')')
	}
}

func printSelect(sb *strings.Builder, sel *Select) {
	sb.WriteString("SELECT ")
	switch {
	case sel.Projection.Star:
		sb.WriteByte('*')
	case sel.Projection.Count:
		sb.WriteString("COUNT(*)")
	case sel.Projection.One:
		sb.WriteByte('1')
	default:
		for i, c := range sel.Projection.Cols {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(printColRef(c))
		}
	}
	sb.WriteString(" FROM ")
	for i, tr := range sel.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(tr.Table)
		if tr.Alias != tr.Table {
			sb.WriteString(" AS ")
			sb.WriteString(tr.Alias)
		}
	}
	if len(sel.Where) > 0 {
		sb.WriteString(" WHERE ")
		for i, pr := range sel.Where {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(printPredicate(pr, false))
		}
	}
	if sel.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.Itoa(sel.Limit))
	}
}

func printPredicate(p Predicate, nested bool) string {
	switch pr := p.(type) {
	case Comparison:
		rhs := ""
		if pr.Right.IsCol {
			rhs = printColRef(pr.Right.Col)
		} else {
			rhs = printLiteral(pr.Right.Lit)
		}
		return printColRef(pr.Left) + " " + pr.Op.String() + " " + rhs
	case OrGroup:
		parts := make([]string, len(pr.Terms))
		for i, t := range pr.Terms {
			parts[i] = printPredicate(t, true)
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	default:
		return fmt.Sprintf("/* unknown predicate %T */", p)
	}
}

func printColRef(c ColRef) string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

func printLiteral(l Literal) string {
	switch l.Kind {
	case LitInt:
		return strconv.FormatInt(l.I, 10)
	case LitFloat:
		if math.IsInf(l.F, 0) || math.IsNaN(l.F) {
			return "/* bad literal */" // not representable in the dialect
		}
		s := strconv.FormatFloat(l.F, 'g', -1, 64)
		// Keep the float/int distinction through a print/parse round trip:
		// integral values like 0.0 format as "0", which would re-parse as
		// an integer literal.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case LitString:
		return "'" + strings.ReplaceAll(l.S, "'", "''") + "'"
	default:
		return "/* bad literal */"
	}
}
