package sqltext

import (
	"math/rand"
	"reflect"
	"testing"

	"kwsdbg/internal/catalog"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT * FROM t WHERE a.b = 'it''s' AND c <= -3.5")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "*", "FROM", "t", "WHERE", "a", ".", "b", "=", "it's", "AND", "c", "<=", "-3.5", ""}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("texts = %q, want %q", texts, want)
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
	if kinds[9] != TokString {
		t.Errorf("token 9 kind = %v, want string", kinds[9])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a @ b", "a ! b"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE Item (
		id INT PRIMARY KEY, name TEXT, ptype INT, cost FLOAT,
		FOREIGN KEY (ptype) REFERENCES PType(id))`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Name != "Item" || len(ct.Columns) != 4 {
		t.Fatalf("ct = %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != catalog.Int {
		t.Errorf("id column = %+v", ct.Columns[0])
	}
	if ct.Columns[3].Type != catalog.Float {
		t.Errorf("cost column = %+v", ct.Columns[3])
	}
	if len(ct.ForeignKeys) != 1 || ct.ForeignKeys[0] != (ForeignKey{Column: "ptype", RefTable: "PType", RefCol: "id"}) {
		t.Errorf("fks = %+v", ct.ForeignKeys)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse(`INSERT INTO t VALUES (1, 'a', 2.5), (-2, 'b''c', 0.0)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ins := stmt.(*Insert)
	if ins.Table != "t" || len(ins.Rows) != 2 {
		t.Fatalf("ins = %+v", ins)
	}
	if ins.Rows[0][0] != IntLit(1) || ins.Rows[0][1] != StringLit("a") || ins.Rows[0][2] != FloatLit(2.5) {
		t.Errorf("row0 = %+v", ins.Rows[0])
	}
	if ins.Rows[1][0] != IntLit(-2) || ins.Rows[1][1] != StringLit("b'c") {
		t.Errorf("row1 = %+v", ins.Rows[1])
	}
}

func TestParseSelectForms(t *testing.T) {
	tests := []struct {
		src   string
		check func(t *testing.T, sel *Select)
	}{
		{"SELECT * FROM t", func(t *testing.T, sel *Select) {
			if !sel.Projection.Star || sel.Limit != -1 || len(sel.From) != 1 {
				t.Errorf("sel = %+v", sel)
			}
		}},
		{"SELECT COUNT(*) FROM t", func(t *testing.T, sel *Select) {
			if !sel.Projection.Count {
				t.Errorf("sel = %+v", sel)
			}
		}},
		{"SELECT 1 FROM t LIMIT 1", func(t *testing.T, sel *Select) {
			if !sel.Projection.One || sel.Limit != 1 {
				t.Errorf("sel = %+v", sel)
			}
		}},
		{"SELECT a.x, y FROM t a, u AS b", func(t *testing.T, sel *Select) {
			wantCols := []ColRef{{Qualifier: "a", Column: "x"}, {Column: "y"}}
			if !reflect.DeepEqual(sel.Projection.Cols, wantCols) {
				t.Errorf("cols = %+v", sel.Projection.Cols)
			}
			wantFrom := []TableRef{{Table: "t", Alias: "a"}, {Table: "u", Alias: "b"}}
			if !reflect.DeepEqual(sel.From, wantFrom) {
				t.Errorf("from = %+v", sel.From)
			}
		}},
		{"SELECT * FROM t WHERE t.a = u.b AND t.c CONTAINS 'kw' AND (t.d LIKE '%x%' OR t.e = 3)",
			func(t *testing.T, sel *Select) {
				if len(sel.Where) != 3 {
					t.Fatalf("where = %+v", sel.Where)
				}
				cmp := sel.Where[0].(Comparison)
				if cmp.Op != OpEq || !cmp.Right.IsCol {
					t.Errorf("join pred = %+v", cmp)
				}
				cmp = sel.Where[1].(Comparison)
				if cmp.Op != OpContains || cmp.Right.Lit.S != "kw" {
					t.Errorf("contains pred = %+v", cmp)
				}
				og := sel.Where[2].(OrGroup)
				if len(og.Terms) != 2 {
					t.Errorf("or group = %+v", og)
				}
				if og.Terms[0].(Comparison).Op != OpLike {
					t.Errorf("or term 0 = %+v", og.Terms[0])
				}
			}},
		{"SELECT * FROM t WHERE a <> 1 AND b != 2 AND c < 3 AND d <= 4 AND e > 5 AND f >= 6 AND g NOT LIKE 'x'",
			func(t *testing.T, sel *Select) {
				wantOps := []CmpOp{OpNe, OpNe, OpLt, OpLe, OpGt, OpGe, OpNotLike}
				for i, pr := range sel.Where {
					if got := pr.(Comparison).Op; got != wantOps[i] {
						t.Errorf("op %d = %v, want %v", i, got, wantOps[i])
					}
				}
			}},
		{"SELECT * FROM t WHERE (a = 1)", func(t *testing.T, sel *Select) {
			// Single-term parens collapse to the bare comparison.
			if _, ok := sel.Where[0].(Comparison); !ok {
				t.Errorf("where = %T", sel.Where[0])
			}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.src, func(t *testing.T) {
			stmt, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			tc.check(t, stmt.(*Select))
		})
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE t (id INT PRIMARY KEY, s TEXT);
		INSERT INTO t VALUES (1, 'x');
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if _, err := ParseScript(""); err != nil {
		t.Errorf("empty script: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                   // Parse requires exactly one statement
		"DROP TABLE t",                       // unsupported verb
		"SELECT FROM t",                      // missing projection
		"SELECT * FROM",                      // missing table
		"SELECT * FROM t WHERE",              // missing predicate
		"SELECT * FROM t WHERE a LIKE b",     // LIKE needs string literal
		"SELECT * FROM t WHERE a CONTAINS 3", // CONTAINS needs string literal
		"SELECT * FROM t LIMIT x",            // bad limit
		"SELECT * FROM t LIMIT -1",           // bad limit (lexes as number)
		"CREATE TABLE t (a BLOB)",            // unknown type
		"CREATE TABLE t (a INT",              // unterminated
		"INSERT INTO t VALUES 1",             // missing parens
		"SELECT * FROM t WHERE a ** b",       // bad operator
		"SELECT * FROM t extra garbage go",   // trailing junk
		"SELECT * FROM t WHERE (a = 1 OR)",   // dangling OR
		"SELECT select FROM t",               // keyword as identifier
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestPrintStable(t *testing.T) {
	tests := []string{
		"SELECT * FROM t",
		"SELECT COUNT(*) FROM t AS x, u",
		"SELECT 1 FROM Item AS t0, PType AS t1 WHERE t0.ptype = t1.id AND (t0.name CONTAINS 'saffron' OR t0.description CONTAINS 'saffron') LIMIT 1",
		"INSERT INTO t VALUES (1, 'a''b', 2.5)",
		"CREATE TABLE t (id INT PRIMARY KEY, s TEXT, f FLOAT, FOREIGN KEY (id) REFERENCES u(v))",
	}
	for _, src := range tests {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := Print(stmt); got != src {
			t.Errorf("Print = %q, want %q", got, src)
		}
	}
}

// randSelect builds a random Select AST from a bounded grammar.
func randSelect(r *rand.Rand) *Select {
	ident := func() string {
		names := []string{"t", "u", "v", "alpha", "b2"}
		return names[r.Intn(len(names))]
	}
	col := func() ColRef {
		c := ColRef{Column: ident()}
		if r.Intn(2) == 0 {
			c.Qualifier = ident()
		}
		return c
	}
	var pred func(depth int) Predicate
	pred = func(depth int) Predicate {
		if depth < 2 && r.Intn(3) == 0 {
			n := 2 + r.Intn(2)
			terms := make([]Predicate, n)
			for i := range terms {
				terms[i] = pred(depth + 1)
			}
			return OrGroup{Terms: terms}
		}
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike, OpNotLike, OpContains}
		op := ops[r.Intn(len(ops))]
		cmp := Comparison{Left: col(), Op: op}
		switch {
		case op == OpLike || op == OpNotLike || op == OpContains:
			cmp.Right = LitOperand(StringLit("kw'%_" + ident()))
		case r.Intn(2) == 0:
			cmp.Right = ColOperand(col())
		default:
			switch r.Intn(3) {
			case 0:
				cmp.Right = LitOperand(IntLit(int64(r.Intn(100) - 50)))
			case 1:
				cmp.Right = LitOperand(FloatLit(float64(r.Intn(100)) + 0.5))
			default:
				cmp.Right = LitOperand(StringLit(ident()))
			}
		}
		return cmp
	}
	sel := &Select{Limit: -1}
	switch r.Intn(4) {
	case 0:
		sel.Projection.Star = true
	case 1:
		sel.Projection.Count = true
	case 2:
		sel.Projection.One = true
	default:
		for i := 0; i <= r.Intn(3); i++ {
			sel.Projection.Cols = append(sel.Projection.Cols, col())
		}
	}
	aliases := []string{"a0", "a1", "a2", "a3"}
	for i := 0; i <= r.Intn(3); i++ {
		tr := TableRef{Table: ident(), Alias: aliases[i]}
		if r.Intn(3) == 0 {
			tr.Alias = tr.Table
		}
		sel.From = append(sel.From, tr)
	}
	for i := 0; i < r.Intn(4); i++ {
		sel.Where = append(sel.Where, pred(0))
	}
	if r.Intn(2) == 0 {
		sel.Limit = r.Intn(10)
	}
	return sel
}

// Property: Print then Parse is the identity on ASTs.
func TestPrintParseRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20150323))
	for i := 0; i < 500; i++ {
		want := randSelect(r)
		src := Print(want)
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("iteration %d: Parse(%q): %v", i, src, err)
		}
		if !reflect.DeepEqual(stmt, want) {
			t.Fatalf("iteration %d: round trip mismatch\nsrc:  %s\ngot:  %#v\nwant: %#v", i, src, stmt, want)
		}
	}
}

func TestCmpOpString(t *testing.T) {
	if got := CmpOp(99).String(); got != "?" {
		t.Errorf("unknown op = %q", got)
	}
	if OpNotLike.String() != "NOT LIKE" {
		t.Errorf("NOT LIKE spelled %q", OpNotLike.String())
	}
}
