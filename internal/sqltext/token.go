// Package sqltext implements the SQL dialect spoken by the embedded engine:
// lexer, AST, recursive-descent parser, and a printer that renders ASTs back
// to canonical SQL text.
//
// The dialect covers exactly what a KWS-S system generates plus what loading
// a dataset needs:
//
//	CREATE TABLE t (c INT PRIMARY KEY, d TEXT, FOREIGN KEY (d) REFERENCES u(v))
//	INSERT INTO t VALUES (1, 'x'), (2, 'y')
//	SELECT * | COUNT(*) | 1 | refs FROM t [AS] a, u b
//	    [WHERE a.c = b.v AND a.d CONTAINS 'kw' AND (x OR y) AND a.e < 3]
//	    [LIMIT n]
//
// CONTAINS is the token-match predicate keyword search needs (it is what a
// Lucene-backed system actually evaluates); LIKE provides standard %/_
// pattern matching for completeness.
package sqltext

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokPunct // single characters: ( ) , . * =
	TokOp    // multi-char operators: <= >= != <>
)

// Token is one lexical token with its position (byte offset) for errors.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// keywords of the dialect; lookup is case-insensitive.
var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"FOREIGN": true, "REFERENCES": true, "INT": true, "TEXT": true,
	"FLOAT": true, "INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"LIKE": true, "CONTAINS": true, "LIMIT": true, "AS": true,
	"COUNT": true, "NOT": true,
}

// IsKeyword reports whether an identifier token is a reserved keyword.
func IsKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

// lexer tokenizes a SQL string.
type lexer struct {
	src string
	pos int
}

// Lex tokenizes src completely, returning the token stream or a syntax error.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src}
	var toks []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) next() (Token, error) {
	for lx.pos < len(lx.src) && unicode.IsSpace(rune(lx.src[lx.pos])) {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		return Token{Kind: TokIdent, Text: lx.src[start:lx.pos], Pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9':
		lx.pos++ // sign or first digit
		seenDot := false
		for lx.pos < len(lx.src) {
			d := lx.src[lx.pos]
			if d == '.' && !seenDot {
				seenDot = true
				lx.pos++
				continue
			}
			if d < '0' || d > '9' {
				break
			}
			lx.pos++
		}
		// Scientific notation: [eE][+-]?digits.
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
			p := lx.pos + 1
			if p < len(lx.src) && (lx.src[p] == '+' || lx.src[p] == '-') {
				p++
			}
			digits := p
			for p < len(lx.src) && lx.src[p] >= '0' && lx.src[p] <= '9' {
				p++
			}
			if p > digits {
				lx.pos = p
			}
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Pos: start}, nil
	case c == '\'':
		var sb strings.Builder
		lx.pos++
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, fmt.Errorf("sqltext: unterminated string literal at offset %d", start)
			}
			ch := lx.src[lx.pos]
			if ch == '\'' {
				// '' escapes a single quote.
				if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
					sb.WriteByte('\'')
					lx.pos += 2
					continue
				}
				lx.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(ch)
			lx.pos++
		}
	case c == '<' || c == '>' || c == '!':
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '=' || (c == '<' && lx.src[lx.pos] == '>')) {
			lx.pos++
			return Token{Kind: TokOp, Text: lx.src[start:lx.pos], Pos: start}, nil
		}
		if c == '!' {
			return Token{}, fmt.Errorf("sqltext: unexpected '!' at offset %d", start)
		}
		return Token{Kind: TokOp, Text: lx.src[start:lx.pos], Pos: start}, nil
	case strings.IndexByte("(),.*=;", c) >= 0:
		lx.pos++
		return Token{Kind: TokPunct, Text: string(c), Pos: start}, nil
	default:
		return Token{}, fmt.Errorf("sqltext: unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
