package storage

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"kwsdbg/internal/catalog"
)

func testSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	return catalog.NewSchemaBuilder().
		AddRelation(catalog.MustRelation("Item",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "name", Type: catalog.Text},
			catalog.Column{Name: "ptype", Type: catalog.Int},
			catalog.Column{Name: "cost", Type: catalog.Float})).
		AddRelation(catalog.MustRelation("PType",
			catalog.Column{Name: "id", Type: catalog.Int, PrimaryKey: true},
			catalog.Column{Name: "kind", Type: catalog.Text})).
		AddEdge("Item", "ptype", "PType", "id").
		MustBuild()
}

func TestValueConstructorsAndEqual(t *testing.T) {
	if !IntV(3).Equal(IntV(3)) || IntV(3).Equal(IntV(4)) {
		t.Error("IntV equality broken")
	}
	if !TextV("a").Equal(TextV("a")) || TextV("a").Equal(TextV("b")) {
		t.Error("TextV equality broken")
	}
	if !FloatV(1.5).Equal(FloatV(1.5)) || FloatV(1.5).Equal(FloatV(2.5)) {
		t.Error("FloatV equality broken")
	}
	if IntV(0).Equal(TextV("")) {
		t.Error("cross-kind values compare equal")
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{IntV(42), "42"},
		{FloatV(2.5), "2.5"},
		{TextV("candle"), "candle"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestInsertAndScan(t *testing.T) {
	db := NewDatabase(testSchema(t))
	tbl, ok := db.Table("Item")
	if !ok {
		t.Fatal("Item table missing")
	}
	rows := []Row{
		{IntV(1), TextV("saffron scented oil"), IntV(1), FloatV(4.99)},
		{IntV(2), TextV("vanilla scented candle"), IntV(2), FloatV(5.99)},
	}
	for i, r := range rows {
		id, err := tbl.Insert(r)
		if err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
		if int(id) != i {
			t.Errorf("Insert(%d) id = %d", i, id)
		}
	}
	if tbl.RowCount() != 2 {
		t.Fatalf("RowCount = %d, want 2", tbl.RowCount())
	}
	var seen int
	tbl.Scan(func(id RowID, row Row) bool {
		if !row[0].Equal(rows[id][0]) {
			t.Errorf("row %d mismatch", id)
		}
		seen++
		return true
	})
	if seen != 2 {
		t.Errorf("scanned %d rows, want 2", seen)
	}
	// Early termination.
	seen = 0
	tbl.Scan(func(RowID, Row) bool { seen++; return false })
	if seen != 1 {
		t.Errorf("early-stop scan visited %d rows, want 1", seen)
	}
}

func TestInsertValidation(t *testing.T) {
	db := NewDatabase(testSchema(t))
	tbl, _ := db.Table("Item")
	if _, err := tbl.Insert(Row{IntV(1)}); err == nil || !strings.Contains(err.Error(), "values") {
		t.Errorf("short row: err = %v", err)
	}
	bad := Row{TextV("x"), TextV("n"), IntV(0), FloatV(0)}
	if _, err := tbl.Insert(bad); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("wrong kind: err = %v", err)
	}
	if tbl.RowCount() != 0 {
		t.Errorf("failed inserts stored rows: RowCount = %d", tbl.RowCount())
	}
}

func TestMustInsertPanics(t *testing.T) {
	db := NewDatabase(testSchema(t))
	tbl, _ := db.Table("Item")
	defer func() {
		if recover() == nil {
			t.Fatal("MustInsert did not panic")
		}
	}()
	tbl.MustInsert(Row{IntV(1)})
}

func TestLookupInt(t *testing.T) {
	db := NewDatabase(testSchema(t))
	tbl, _ := db.Table("Item")
	for i := 0; i < 10; i++ {
		tbl.MustInsert(Row{IntV(int64(i)), TextV("x"), IntV(int64(i % 3)), FloatV(0)})
	}
	got := tbl.LookupInt(2, 1) // ptype == 1 -> rows 1, 4, 7
	want := []RowID{1, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("LookupInt = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LookupInt = %v, want %v", got, want)
		}
	}
	if got := tbl.LookupInt(2, 99); len(got) != 0 {
		t.Errorf("LookupInt(missing) = %v", got)
	}
	if got := tbl.LookupInt(1, 1); got != nil {
		t.Errorf("LookupInt on text column = %v, want nil", got)
	}
	if got := tbl.LookupInt(-1, 1); got != nil {
		t.Errorf("LookupInt(-1) = %v, want nil", got)
	}
	if got := tbl.LookupInt(99, 1); got != nil {
		t.Errorf("LookupInt(99) = %v, want nil", got)
	}
}

func TestLookupIntMaintainedAcrossInsert(t *testing.T) {
	db := NewDatabase(testSchema(t))
	tbl, _ := db.Table("Item")
	tbl.MustInsert(Row{IntV(1), TextV("a"), IntV(7), FloatV(0)})
	// Force index build, then insert more rows and re-probe.
	if got := tbl.LookupInt(2, 7); len(got) != 1 {
		t.Fatalf("initial LookupInt = %v", got)
	}
	tbl.MustInsert(Row{IntV(2), TextV("b"), IntV(7), FloatV(0)})
	tbl.MustInsert(Row{IntV(3), TextV("c"), IntV(8), FloatV(0)})
	if got := tbl.LookupInt(2, 7); len(got) != 2 || got[1] != 1 {
		t.Fatalf("post-insert LookupInt = %v, want [0 1]", got)
	}
}

func TestUpdate(t *testing.T) {
	db := NewDatabase(testSchema(t))
	tbl, _ := db.Table("Item")
	tbl.MustInsert(Row{IntV(1), TextV("red candle"), IntV(5), FloatV(1)})
	if got := tbl.LookupInt(2, 5); len(got) != 1 {
		t.Fatalf("pre-update LookupInt = %v", got)
	}
	if err := tbl.Update(0, Row{IntV(1), TextV("blue candle"), IntV(6), FloatV(1)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if got := tbl.Row(0)[1].S; got != "blue candle" {
		t.Errorf("updated row text = %q", got)
	}
	if got := tbl.LookupInt(2, 5); len(got) != 0 {
		t.Errorf("stale index after update: %v", got)
	}
	if got := tbl.LookupInt(2, 6); len(got) != 1 {
		t.Errorf("rebuilt index missing row: %v", got)
	}
	if err := tbl.Update(99, Row{}); err == nil {
		t.Error("Update(99) succeeded")
	}
	if err := tbl.Update(0, Row{IntV(1)}); err == nil {
		t.Error("Update with short row succeeded")
	}
	if err := tbl.Update(0, Row{TextV(""), TextV(""), IntV(0), FloatV(0)}); err == nil {
		t.Error("Update with wrong kinds succeeded")
	}
}

func TestDatabaseTotals(t *testing.T) {
	db := NewDatabase(testSchema(t))
	itm, _ := db.Table("Item")
	pt, _ := db.Table("PType")
	itm.MustInsert(Row{IntV(1), TextV("a"), IntV(1), FloatV(0)})
	pt.MustInsert(Row{IntV(1), TextV("candle")})
	pt.MustInsert(Row{IntV(2), TextV("oil")})
	if got := db.TotalRows(); got != 3 {
		t.Errorf("TotalRows = %d, want 3", got)
	}
	if _, ok := db.Table("missing"); ok {
		t.Error("Table(missing) unexpectedly found")
	}
	if db.Schema() == nil {
		t.Error("Schema() returned nil")
	}
}

// Property: LookupInt agrees with a full scan for arbitrary data.
func TestLookupIntMatchesScanProperty(t *testing.T) {
	schema := testSchema(t)
	f := func(vals []int8) bool {
		db := NewDatabase(schema)
		tbl, _ := db.Table("Item")
		for i, v := range vals {
			tbl.MustInsert(Row{IntV(int64(i)), TextV("t"), IntV(int64(v % 4)), FloatV(0)})
		}
		for probe := int64(-1); probe <= 4; probe++ {
			got := tbl.LookupInt(2, probe)
			var want []RowID
			tbl.Scan(func(id RowID, row Row) bool {
				if row[2].I == probe {
					want = append(want, id)
				}
				return true
			})
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentLookupIntColdIndex(t *testing.T) {
	db := NewDatabase(testSchema(t))
	tbl, _ := db.Table("Item")
	for i := 0; i < 500; i++ {
		tbl.MustInsert(Row{IntV(int64(i)), TextV("x"), IntV(int64(i % 7)), FloatV(0)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for probe := int64(0); probe < 7; probe++ {
				ids := tbl.LookupInt(2, probe)
				for _, id := range ids {
					if tbl.Row(id)[2].I != probe {
						t.Errorf("goroutine %d: wrong row for probe %d", g, probe)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentInsertWithReaders exercises the snapshot-publication
// contract under -race: writers serialize, and scans/lookups running against
// an insert storm always observe a consistent prefix of the heap — a posting
// list never points at an unpublished row, a scan never sees a torn one.
func TestConcurrentInsertWithReaders(t *testing.T) {
	db := NewDatabase(testSchema(t))
	tbl, _ := db.Table("Item")
	const writers, perWriter = 4, 250

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := tbl.RowCount()
				seen := 0
				tbl.Scan(func(id RowID, row Row) bool {
					if row[0].Kind != catalog.Int || row[1].Kind != catalog.Text {
						t.Error("scan observed a torn row")
						return false
					}
					seen++
					return true
				})
				if seen < n {
					t.Errorf("scan saw %d rows after RowCount reported %d", seen, n)
					return
				}
				for probe := int64(0); probe < 7; probe++ {
					for _, id := range tbl.LookupInt(2, probe) {
						if tbl.Row(id)[2].I != probe {
							t.Errorf("index points at wrong row for probe %d", probe)
							return
						}
					}
				}
			}
		}()
	}

	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i)
				tbl.MustInsert(Row{IntV(id), TextV("x"), IntV(id % 7), FloatV(0)})
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got := tbl.RowCount(); got != writers*perWriter {
		t.Fatalf("RowCount = %d, want %d", got, writers*perWriter)
	}
	total := 0
	for probe := int64(0); probe < 7; probe++ {
		total += len(tbl.LookupInt(2, probe))
	}
	if total != writers*perWriter {
		t.Fatalf("posting lists cover %d rows, want %d", total, writers*perWriter)
	}
}
