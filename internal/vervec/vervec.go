// Package vervec is the engine's fine-grained data-version vector: one
// monotone write counter per table and per keyword term, plus a non-monotone
// epoch for mutations that cannot be attributed (in-place updates).
//
// The scalar engine.DataVersion() it refines has a blunt failure mode: any
// INSERT advances the one global counter, so every prepared plan, candidate
// set, and cached probe verdict in the process goes stale at once — even for
// join trees that cannot possibly see the written table. The vector lets a
// cached artifact record the *footprint* it was computed from (the vector
// names of its tables and terms, with their counter values at compute time)
// and later ask the cheap question "did anything I depend on move?" instead
// of the global one "did anything at all move?".
//
// Names are namespaced strings (TableKey / TermKey) so tables and terms
// share one counter map without colliding. Counters only ever advance; the
// epoch advances on BumpEpoch and invalidates every stamp regardless of
// footprint, which is the correct answer for non-monotone mutations where
// per-name attribution is impossible.
//
// Writers must bump before publishing the mutation and readers must stamp
// before reading the data they cache (see Stamp): with that discipline a
// stamp that still matches the vector proves the cached artifact saw
// everything the vector has seen, while a mid-computation write makes the
// stamp stale — the safe direction.
package vervec

import "sync"

// TableKey returns the vector name of a table's write counter.
func TableKey(table string) string { return "t\x00" + table }

// TermKey returns the vector name of a keyword term's write counter. Terms
// are the inverted index's tokens (see invidx.Tokenize); callers tokenize
// before keying so "Keyword" and "keyword" share one counter.
func TermKey(term string) string { return "k\x00" + term }

// Vector is a set of named monotone counters plus an epoch. The zero value
// is not usable; see New. Safe for concurrent use.
type Vector struct {
	mu sync.RWMutex
	// counters maps vector name to its write count; absent means 0.
	// guarded by mu.
	counters map[string]uint64
	// epoch advances on non-monotone mutations. guarded by mu.
	epoch uint64
	// seq counts every Bump and BumpEpoch call, so snapshot consumers can
	// detect "nothing moved" with one read. guarded by mu.
	seq uint64
}

// New returns an empty vector: every counter at zero, epoch zero.
func New() *Vector {
	return &Vector{counters: make(map[string]uint64)}
}

// Bump advances the named counters by one, atomically with respect to
// stamps and snapshots: a reader sees either none or all of one call's
// bumps. Call it *before* publishing the mutation it describes, so a stamp
// taken mid-write goes stale rather than vouching for data it never saw.
func (v *Vector) Bump(names ...string) {
	if len(names) == 0 {
		return
	}
	v.mu.Lock()
	for _, n := range names {
		v.counters[n]++
	}
	v.seq++
	v.mu.Unlock()
}

// BumpEpoch invalidates every outstanding stamp, for mutations whose
// footprint is unknowable (in-place updates, external loads).
func (v *Vector) BumpEpoch() {
	v.mu.Lock()
	v.epoch++
	v.seq++
	v.mu.Unlock()
}

// Epoch returns the current epoch.
func (v *Vector) Epoch() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.epoch
}

// Seq returns the total number of bump events observed. Snapshot consumers
// compare it to skip re-snapshotting a quiescent vector.
func (v *Vector) Seq() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.seq
}

// Counter returns the named counter's current value (0 if never bumped).
func (v *Vector) Counter(name string) uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.counters[name]
}

// Advanced reports whether the named counter has moved past val.
func (v *Vector) Advanced(name string, val uint64) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.counters[name] > val
}

// EpochChanged reports whether the epoch differs from e.
func (v *Vector) EpochChanged(e uint64) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.epoch != e
}

// Stamp is a footprint snapshot: the counter values of a fixed name set at
// one instant, plus the epoch. Names is aliased, not copied — callers pass
// a slice they will not mutate (footprints are computed once per artifact).
type Stamp struct {
	Epoch uint64
	Names []string
	Vals  []uint64
}

// Stamp snapshots the named counters under one lock acquisition. Take the
// stamp before reading the data the artifact is computed from.
func (v *Vector) Stamp(names []string) Stamp {
	s := Stamp{Names: names, Vals: make([]uint64, len(names))}
	v.mu.RLock()
	s.Epoch = v.epoch
	for i, n := range names {
		s.Vals[i] = v.counters[n]
	}
	v.mu.RUnlock()
	return s
}

// Stale reports whether any counter in the stamp's footprint has advanced
// past its stamped value, or the epoch has moved. A fresh result proves the
// vector has observed no write intersecting the footprint since the stamp.
func (v *Vector) Stale(s Stamp) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.epoch != s.Epoch {
		return true
	}
	for i, n := range s.Names {
		if v.counters[n] > s.Vals[i] {
			return true
		}
	}
	return false
}

// View is an immutable snapshot of the whole vector, for consumers that
// compare many stamps against one consistent instant (the probe cache syncs
// a View per debug run instead of locking the live vector per lookup).
type View struct {
	// Seq and Epoch are the vector's values at snapshot time.
	Seq   uint64
	Epoch uint64
	vals  map[string]uint64
}

// Snapshot copies the vector out. O(names ever bumped); callers gate on Seq
// to skip the copy when nothing moved.
func (v *Vector) Snapshot() *View {
	v.mu.RLock()
	defer v.mu.RUnlock()
	vw := &View{Seq: v.seq, Epoch: v.epoch, vals: make(map[string]uint64, len(v.counters))}
	for n, c := range v.counters {
		vw.vals[n] = c
	}
	return vw
}

// Counter returns the named counter's value at snapshot time. A nil View
// reads as all-zero (the state of a vector nothing ever bumped).
func (vw *View) Counter(name string) uint64 {
	if vw == nil {
		return 0
	}
	return vw.vals[name]
}
