package vervec

import (
	"fmt"
	"sync"
	"testing"
)

func TestStampFreshUntilFootprintMoves(t *testing.T) {
	v := New()
	fp := []string{TableKey("Item"), TermKey("lilac")}
	st := v.Stamp(fp)
	if v.Stale(st) {
		t.Fatal("fresh stamp reported stale")
	}

	// A write disjoint from the footprint must not stale it.
	v.Bump(TableKey("Person"), TermKey("widom"))
	if v.Stale(st) {
		t.Fatal("disjoint bump staled the stamp")
	}

	// A write intersecting any footprint name must.
	v.Bump(TermKey("lilac"))
	if !v.Stale(st) {
		t.Fatal("intersecting bump did not stale the stamp")
	}
}

func TestEpochStalesEverything(t *testing.T) {
	v := New()
	st := v.Stamp([]string{TableKey("Item")})
	v.BumpEpoch()
	if !v.Stale(st) {
		t.Fatal("epoch bump did not stale the stamp")
	}
	if !v.EpochChanged(st.Epoch) {
		t.Fatal("EpochChanged missed the bump")
	}
}

func TestBumpIsAtomicAcrossNames(t *testing.T) {
	// One Bump call's names move together: a concurrent stamp never sees
	// the table advanced without its terms (the candidate-set staleness
	// rule is a conjunction and relies on this).
	v := New()
	names := []string{TableKey("Item"), TermKey("a"), TermKey("b")}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			v.Bump(names...)
		}
	}()
	for i := 0; i < 1000; i++ {
		st := v.Stamp(names)
		if st.Vals[0] != st.Vals[1] || st.Vals[1] != st.Vals[2] {
			t.Fatalf("torn stamp: %v", st.Vals)
		}
	}
	<-done
}

func TestViewSnapshotIsImmutable(t *testing.T) {
	v := New()
	v.Bump(TableKey("Item"))
	vw := v.Snapshot()
	if got := vw.Counter(TableKey("Item")); got != 1 {
		t.Fatalf("view counter = %d, want 1", got)
	}
	v.Bump(TableKey("Item"))
	if got := vw.Counter(TableKey("Item")); got != 1 {
		t.Fatalf("view moved with the vector: %d", got)
	}
	if vw.Seq == v.Seq() {
		t.Fatal("Seq did not advance past the snapshot")
	}
	var nilView *View
	if nilView.Counter(TableKey("Item")) != 0 {
		t.Fatal("nil view must read zero")
	}
}

func TestConcurrentBumpAndStale(t *testing.T) {
	v := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := TableKey(fmt.Sprintf("T%d", g))
			for i := 0; i < 500; i++ {
				st := v.Stamp([]string{name})
				v.Bump(name)
				if !v.Stale(st) {
					t.Error("own bump did not stale own stamp")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if v.Seq() != 8*500 {
		t.Fatalf("seq = %d, want %d", v.Seq(), 8*500)
	}
}
